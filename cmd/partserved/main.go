// Command partserved runs PartServe: a resident mining service that
// keeps a database, its frequent-pattern set, and the feature index live
// behind an atomic snapshot, answers pattern/containment queries over
// HTTP while folding graph updates in through IncPartMiner.
//
//	partserved -minsup 0.05 -addr 127.0.0.1:7365 db.txt
//	curl localhost:7365/v1/patterns?k=5
//	curl -X POST --data-binary @query.txt localhost:7365/v1/contains
//	curl -X POST -d '{"ops":[{"op":"relabel_vertex","tid":3,"u":0,"label":9}]}' \
//	     localhost:7365/v1/update
//
// With -snapshot the service persists every published snapshot (write to
// a temp file, then rename); -restore warm-starts from that file instead
// of mining from scratch.
//
// With -cluster-addr the service becomes a cluster coordinator: partition
// units are mined on partworker processes that join over RPC (consistent
// hashing on unit id), published snapshots are replicated to -replicas
// workers, and /v1/cluster reports the fleet. Workers that miss
// heartbeats lose their units to the next ring owners; an empty or dead
// fleet degrades to local mining, never to failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"partminer/internal/cluster"
	"partminer/internal/core"
	"partminer/internal/graph"
	"partminer/internal/partition"
	"partminer/internal/query"
	"partminer/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7365", "listen address (use :0 for an ephemeral port)")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	minsup := flag.Float64("minsup", 0.04, "minimum support as a fraction of the database (0.04 = 4%), or an absolute count when >= 1")
	k := flag.Int("k", 2, "number of units")
	maxEdges := flag.Int("maxedges", 0, "bound on pattern size (0 = unbounded)")
	envelope := flag.Int("envelope", 0, "classic growth envelope: mine edge-by-edge up to this size, then continue to -maxedges by decomposition over mined pieces (0 = classic all the way)")
	parallel := flag.Bool("parallel", false, "mine units in parallel")
	workers := flag.Int("workers", 0, "worker-pool bound with -parallel (0 = GOMAXPROCS)")
	criteria := flag.String("criteria", "partition3", "partitioning strategy: "+strings.Join(partition.Names(), ", "))
	batchWindow := flag.Duration("batch-window", 20*time.Millisecond, "how long the update loop lingers to coalesce concurrent updates")
	featEdges := flag.Int("featedges", 0, "max feature size for the containment index (0 = default)")
	queryCache := flag.Int("query-cache", 0, "per-epoch ad-hoc query result cache size in entries (0 = 1024 default, negative disables)")
	planEdges := flag.Int("plan-edges", 0, "max pattern size compiled into matching plans (0 = 8 default, negative disables plans and the cache)")
	snapshotPath := flag.String("snapshot", "", "persist every published snapshot to this file (atomic rename)")
	restore := flag.Bool("restore", false, "warm-start from the -snapshot file instead of mining the database argument")
	clusterAddr := flag.String("cluster-addr", "", "coordinator RPC listen address for partworker fleets (empty = single-node)")
	clusterPortFile := flag.String("cluster-portfile", "", "write the coordinator's bound RPC address to this file (for scripts)")
	replicas := flag.Int("replicas", 0, "workers each published snapshot is replicated to (0 = 1)")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 0, "expected worker heartbeat period (0 = 2s default)")
	clusterMisses := flag.Int("cluster-misses", 0, "missed heartbeat intervals before a worker is declared dead (0 = 3)")
	clusterWait := flag.Int("cluster-wait", 0, "wait for this many workers to register before the initial mine (0 = don't wait)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this address (off when empty)")
	slowThreshold := flag.Duration("slow-threshold", 0, "journal operations slower than this to /v1/debug/slow (0 = 100ms default, negative disables)")
	slowLogSize := flag.Int("slowlog", 0, "slow-operation journal capacity (0 = 64 default)")
	flag.Parse()

	runID := fmt.Sprintf("serve-%d-%d", os.Getpid(), time.Now().Unix())
	log := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("run_id", runID)

	bis, err := partition.ByName(*criteria)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := server.Config{
		Mine:          core.Options{K: *k, MaxEdges: *maxEdges, GrowthEnvelope: *envelope, Parallel: *parallel, Workers: *workers, Bisector: bis},
		Search:        query.IndexOptions{MaxFeatureEdges: *featEdges, CacheSize: *queryCache, PlanMaxEdges: *planEdges},
		BatchWindow:   *batchWindow,
		Logger:        log,
		SlowThreshold: *slowThreshold,
		SlowLogSize:   *slowLogSize,
	}
	if *snapshotPath != "" {
		path := *snapshotPath
		cfg.OnSwap = func(snap *server.Snapshot) {
			if err := saveSnapshot(path, snap); err != nil {
				log.Error("snapshot save failed", "err", err)
			}
		}
	}

	// Coordinator mode: expose the membership RPC service and hand the
	// coordinator to the server, which shards unit mining over whatever
	// fleet joins and replicates published snapshots to it.
	var coord *cluster.Coordinator
	if *clusterAddr != "" {
		coord = cluster.NewCoordinator(cluster.Config{
			Replicas:          *replicas,
			HeartbeatInterval: *clusterHeartbeat,
			MaxMissed:         *clusterMisses,
		})
		cln, err := net.Listen("tcp", *clusterAddr)
		if err != nil {
			fatal(err)
		}
		defer cln.Close()
		if *clusterPortFile != "" {
			if err := os.WriteFile(*clusterPortFile, []byte(cln.Addr().String()), 0o644); err != nil {
				fatal(err)
			}
		}
		go func() {
			if err := coord.Serve(cln); err != nil && ctx.Err() == nil {
				log.Error("coordinator RPC server exited", "err", err)
			}
		}()
		log.Info("cluster coordinator listening", "addr", cln.Addr().String())
		if *clusterWait > 0 {
			waitDeadline := time.Now().Add(60 * time.Second)
			for coord.AliveMembers() < *clusterWait {
				if ctx.Err() != nil {
					return
				}
				if time.Now().After(waitDeadline) {
					fatal(fmt.Errorf("timed out waiting for %d workers (%d joined)", *clusterWait, coord.AliveMembers()))
				}
				time.Sleep(50 * time.Millisecond)
			}
			log.Info("cluster fleet ready", "workers", coord.AliveMembers())
		}
		cfg.Cluster = coord
		defer coord.Close()
	}

	// Opt-in profiling listener, separate from the API address so the
	// debug surface is never exposed by accident.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		log.Info("pprof listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Error("pprof server exited", "err", err)
			}
		}()
	}

	var srv *server.Server
	start := time.Now()
	if *restore {
		if *snapshotPath == "" {
			fatal(fmt.Errorf("-restore requires -snapshot"))
		}
		f, err := os.Open(*snapshotPath)
		if err != nil {
			fatal(err)
		}
		db, res, err := core.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		log.Info("restored snapshot", "graphs", len(db), "patterns", len(res.Patterns), "path", *snapshotPath)
		srv, err = server.Restore(ctx, db, res, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: partserved [flags] <database file> (or -restore -snapshot <file>)"))
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		db, err := graph.ReadDatabase(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.Mine.MinSupport = absSupport(db, *minsup)
		log.Info("database loaded", "graphs", len(db), "minsup", cfg.Mine.MinSupport)
		srv, err = server.Start(ctx, db, cfg)
		if err != nil {
			fatal(err)
		}
	}
	snap := srv.Snapshot()
	log.Info("ready", "epoch", snap.Epoch, "patterns", snap.PatternCount(),
		"boot", time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	log.Info("listening", "addr", ln.Addr().String())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		log.Info("shutting down")
	case err := <-errc:
		fatal(err)
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// let the update loop fold whatever is already queued.
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Error("shutdown failed", "err", err)
	}
	srv.Close()
	// serve_smoke.sh greps for this exact phrase; keep it stable.
	log.Info("stopped at epoch", "epoch", srv.Snapshot().Epoch)
}

// saveSnapshot persists atomically: a crash mid-write must not corrupt
// the restore file.
func saveSnapshot(path string, snap *server.Snapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".partserved-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// Portable strips the non-serializable miner functions, so snapshots
	// persist even when the units were mined through a cluster.
	if err := core.SaveSnapshot(tmp, snap.Res.Portable()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func absSupport(db graph.Database, minsup float64) int {
	if minsup >= 1 {
		return int(minsup)
	}
	sup := int(minsup * float64(len(db)))
	if sup < 1 {
		sup = 1
	}
	return sup
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partserved:", err)
	os.Exit(1)
}
