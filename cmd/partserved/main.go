// Command partserved runs PartServe: a resident mining service that
// keeps a database, its frequent-pattern set, and the feature index live
// behind an atomic snapshot, answers pattern/containment queries over
// HTTP while folding graph updates in through IncPartMiner.
//
//	partserved -minsup 0.05 -addr 127.0.0.1:7365 db.txt
//	curl localhost:7365/v1/patterns?k=5
//	curl -X POST --data-binary @query.txt localhost:7365/v1/contains
//	curl -X POST -d '{"ops":[{"op":"relabel_vertex","tid":3,"u":0,"label":9}]}' \
//	     localhost:7365/v1/update
//
// With -snapshot the service persists every published snapshot (write to
// a temp file, then rename); -restore warm-starts from that file instead
// of mining from scratch.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"partminer/internal/core"
	"partminer/internal/graph"
	"partminer/internal/partition"
	"partminer/internal/query"
	"partminer/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7365", "listen address (use :0 for an ephemeral port)")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	minsup := flag.Float64("minsup", 0.04, "minimum support as a fraction of the database (0.04 = 4%), or an absolute count when >= 1")
	k := flag.Int("k", 2, "number of units")
	maxEdges := flag.Int("maxedges", 0, "bound on pattern size (0 = unbounded)")
	parallel := flag.Bool("parallel", false, "mine units in parallel")
	workers := flag.Int("workers", 0, "worker-pool bound with -parallel (0 = GOMAXPROCS)")
	criteria := flag.String("criteria", "partition3", "partitioning criteria: partition1, partition2, partition3, metis")
	batchWindow := flag.Duration("batch-window", 20*time.Millisecond, "how long the update loop lingers to coalesce concurrent updates")
	featEdges := flag.Int("featedges", 0, "max feature size for the containment index (0 = default)")
	snapshotPath := flag.String("snapshot", "", "persist every published snapshot to this file (atomic rename)")
	restore := flag.Bool("restore", false, "warm-start from the -snapshot file instead of mining the database argument")
	flag.Parse()

	var bis partition.Bisector
	switch *criteria {
	case "partition1":
		bis = partition.Partition1
	case "partition2":
		bis = partition.Partition2
	case "partition3":
		bis = partition.Partition3
	case "metis":
		bis = partition.Metis{}
	default:
		fatal(fmt.Errorf("unknown criteria %q", *criteria))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := server.Config{
		Mine:        core.Options{K: *k, MaxEdges: *maxEdges, Parallel: *parallel, Workers: *workers, Bisector: bis},
		Search:      query.IndexOptions{MaxFeatureEdges: *featEdges},
		BatchWindow: *batchWindow,
	}
	if *snapshotPath != "" {
		path := *snapshotPath
		cfg.OnSwap = func(snap *server.Snapshot) {
			if err := saveSnapshot(path, snap); err != nil {
				fmt.Fprintln(os.Stderr, "partserved: snapshot save:", err)
			}
		}
	}

	var srv *server.Server
	start := time.Now()
	if *restore {
		if *snapshotPath == "" {
			fatal(fmt.Errorf("-restore requires -snapshot"))
		}
		f, err := os.Open(*snapshotPath)
		if err != nil {
			fatal(err)
		}
		db, res, err := core.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "partserved: restored %d graphs, %d patterns from %s\n",
			len(db), len(res.Patterns), *snapshotPath)
		srv, err = server.Restore(ctx, db, res, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: partserved [flags] <database file> (or -restore -snapshot <file>)"))
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		db, err := graph.ReadDatabase(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.Mine.MinSupport = absSupport(db, *minsup)
		fmt.Fprintf(os.Stderr, "partserved: %d graphs, minimum support %d\n", len(db), cfg.Mine.MinSupport)
		srv, err = server.Start(ctx, db, cfg)
		if err != nil {
			fatal(err)
		}
	}
	snap := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "partserved: epoch %d ready with %d patterns in %v\n",
		snap.Epoch, snap.PatternCount(), time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "partserved: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "partserved: shutting down")
	case err := <-errc:
		fatal(err)
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// let the update loop fold whatever is already queued.
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "partserved: shutdown:", err)
	}
	srv.Close()
	fmt.Fprintf(os.Stderr, "partserved: stopped at epoch %d\n", srv.Snapshot().Epoch)
}

// saveSnapshot persists atomically: a crash mid-write must not corrupt
// the restore file.
func saveSnapshot(path string, snap *server.Snapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".partserved-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := core.SaveSnapshot(tmp, snap.Res); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func absSupport(db graph.Database, minsup float64) int {
	if minsup >= 1 {
		return int(minsup)
	}
	sup := int(minsup * float64(len(db)))
	if sup < 1 {
		sup = 1
	}
	return sup
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partserved:", err)
	os.Exit(1)
}
