// Command benchrunner regenerates the paper's evaluation figures (§5) as
// printed tables. Each figure sweeps the same parameter axis as the paper
// on a scaled-down dataset; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	benchrunner -fig 14a            # one figure
//	benchrunner -fig all            # every figure and ablation
//	benchrunner -fig 16b -d50k 1200 # larger scale
package main

import (
	"flag"
	"fmt"
	"os"

	"partminer/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (13a 13b 14a 14b 15a 15b 16a 16b 17a 17b ablation-join ablation-miner, or 'all')")
	d50k := flag.Int("d50k", bench.DefaultScale.D50k, "graphs standing in for the paper's 50k-graph datasets")
	d100k := flag.Int("d100k", bench.DefaultScale.D100k, "graphs standing in for the paper's 100k-graph datasets")
	maxEdges := flag.Int("maxedges", 0, "bound pattern size (0 = unbounded, the paper's setting); set when shrinking the scale far below the defaults")
	flag.Parse()

	scale := bench.Scale{D50k: *d50k, D100k: *d100k, MaxEdges: *maxEdges}
	names := []string{*fig}
	if *fig == "all" {
		names = bench.Figures()
	}
	for _, name := range names {
		t, err := bench.Figure(name, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
}
