// Command benchrunner regenerates the paper's evaluation figures (§5) as
// printed tables. Each figure sweeps the same parameter axis as the paper
// on a scaled-down dataset; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// With -benchjson it instead measures the tracked substrate
// micro-benchmarks (internal/bench.Micros) and writes one point of the
// benchmark trajectory — a BENCH_*.json snapshot of ns/op, B/op and
// allocs/op per family — optionally embedding the baseline snapshot it
// should be compared against.
//
// Usage:
//
//	benchrunner -fig 14a            # one figure
//	benchrunner -fig all            # every figure and ablation
//	benchrunner -fig 16b -d50k 1200 # larger scale
//	benchrunner -benchjson BENCH_PR3.json -label pr3 -baseline BENCH_PR3_BASELINE.json
//	benchrunner -diff BENCH_PR3.json -baseline BENCH_PR3_BASELINE.json
//
// -diff compares a recorded snapshot against a baseline without running
// anything, exiting 1 on an allocs/op regression above 10% — the cheap CI
// gate `make bench-diff` wires into `make check`. When -baseline is
// omitted the snapshot's embedded baseline is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"partminer/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (13a 13b 14a 14b 15a 15b 16a 16b 17a 17b ablation-join ablation-miner, or 'all')")
	d50k := flag.Int("d50k", bench.DefaultScale.D50k, "graphs standing in for the paper's 50k-graph datasets")
	d100k := flag.Int("d100k", bench.DefaultScale.D100k, "graphs standing in for the paper's 100k-graph datasets")
	maxEdges := flag.Int("maxedges", 0, "bound pattern size (0 = unbounded, the paper's setting); set when shrinking the scale far below the defaults")
	benchJSON := flag.String("benchjson", "", "measure the tracked micro-benchmarks and write a trajectory snapshot to this path (skips figures)")
	label := flag.String("label", "", "label recorded in the -benchjson snapshot (e.g. the PR name)")
	baseline := flag.String("baseline", "", "snapshot file whose measurements are embedded as the -benchjson baseline")
	diff := flag.String("diff", "", "compare this recorded snapshot against -baseline (or its embedded baseline) and exit 1 on >10% allocs/op regression")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	if *diff != "" {
		if err := diffSnapshots(*diff, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeSnapshot(*benchJSON, *label, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	scale := bench.Scale{D50k: *d50k, D100k: *d100k, MaxEdges: *maxEdges}
	names := []string{*fig}
	if *fig == "all" {
		names = bench.Figures()
	}
	for _, name := range names {
		t, err := bench.Figure(name, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
}

// maxAllocsRegression is the bench-diff gate: allocs/op may not grow more
// than this fraction over the recorded baseline.
const maxAllocsRegression = 0.10

// diffSnapshots loads a recorded snapshot and its baseline and fails on
// any allocs/op regression beyond the gate.
func diffSnapshots(snapPath, baselinePath string) error {
	snap, err := loadSnapshotFile(snapPath)
	if err != nil {
		return err
	}
	base := bench.Snapshot{Results: snap.Baseline}
	if baselinePath != "" {
		if base, err = loadSnapshotFile(baselinePath); err != nil {
			return err
		}
	}
	if len(base.Results) == 0 {
		return fmt.Errorf("benchrunner: %s embeds no baseline and no -baseline file was given", snapPath)
	}
	regressions := bench.CompareAllocs(snap, base, maxAllocsRegression)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, r)
		}
		return fmt.Errorf("benchrunner: %d allocs/op regression(s) above %.0f%%", len(regressions), maxAllocsRegression*100)
	}
	fmt.Printf("bench-diff: %d families within %.0f%% of baseline\n", len(snap.Results), maxAllocsRegression*100)
	return nil
}

func loadSnapshotFile(path string) (bench.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Snapshot{}, fmt.Errorf("benchrunner: %w", err)
	}
	defer f.Close()
	return bench.LoadSnapshot(f)
}

// writeSnapshot measures the tracked families and writes the snapshot,
// embedding the baseline file's measurements when one is given.
func writeSnapshot(path, label, baselinePath string) error {
	snap := bench.RunMicros(label, os.Stderr)
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return fmt.Errorf("benchrunner: %w", err)
		}
		base, err := bench.LoadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		snap.Baseline = base.Results
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchrunner: %w", err)
	}
	defer out.Close()
	if err := snap.Write(out); err != nil {
		return fmt.Errorf("benchrunner: writing %s: %w", path, err)
	}
	return nil
}
