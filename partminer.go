// Package partminer is the public facade of a from-scratch Go
// implementation of "A Partition-Based Approach to Graph Mining" (Wang,
// Hsu, Lee, Sheng — ICDE 2006): the PartMiner partition-based frequent
// subgraph miner and its incremental variant IncPartMiner for dynamic
// graph databases, together with the substrates the paper builds on
// (labeled graphs, gSpan canonical codes, Gaston/gSpan unit miners, the
// GraphPart partitioner, a METIS-like baseline, an ADI-style disk-based
// comparator, and the synthetic workload generator of the evaluation).
//
// Quick start:
//
//	db := partminer.Generate(partminer.GeneratorConfig{D: 1000, N: 20, T: 20, I: 5, L: 200, Seed: 1})
//	res, err := partminer.Mine(db, partminer.Options{
//		MinSupport: partminer.AbsoluteSupport(db, 0.04), // the paper's 4%
//		K:          4,                                   // number of units
//	})
//	// res.Patterns: canonical DFS code -> *Pattern with exact support.
//
// When the database changes, mine incrementally instead of re-running:
//
//	updated := partminer.ApplyUpdates(db, partminer.UpdateConfig{Fraction: 0.4, Seed: 2})
//	inc, err := partminer.MineIncremental(db, updated, res)
//	// inc.UF / inc.FI / inc.IF classify every pattern's fate.
//
// The deeper layers are importable directly for advanced use:
// internal packages expose the DFS-code machinery (internal/dfscode),
// subgraph isomorphism (internal/isomorph), the unit miners
// (internal/gspan, internal/gaston), partitioning (internal/partition),
// the merge-join (internal/mergejoin), and the disk-based baseline
// (internal/adimine) — but everything a typical application needs is
// re-exported here.
package partminer

import (
	"context"
	"io"

	"partminer/internal/core"
	"partminer/internal/datagen"
	"partminer/internal/exec"
	"partminer/internal/graph"
	"partminer/internal/partition"
	"partminer/internal/pattern"
	"partminer/internal/query"
	"partminer/internal/remote"
)

// Graph is an undirected labeled graph with integer vertex/edge labels and
// optional per-vertex update frequencies.
type Graph = graph.Graph

// Database is an ordered collection of graphs; a graph's slice index is
// its transaction id for support counting.
type Database = graph.Database

// Pattern is a frequent subgraph: canonical DFS code, exact support, and
// supporting transaction ids.
type Pattern = pattern.Pattern

// PatternSet maps canonical DFS-code keys to patterns.
type PatternSet = pattern.Set

// Options configures Mine; see core.Options for field documentation.
type Options = core.Options

// Result is a full mining outcome (patterns, partition tree, per-unit
// timings), reusable as the baseline for MineIncremental.
type Result = core.Result

// IncResult extends Result with the UF/FI/IF classification and re-mining
// statistics of an incremental run.
type IncResult = core.IncResult

// Criteria is the GraphPart weight function w(V1) = λ1·avg(ufreq) −
// λ2·|cut|; Bisector is the partitioning strategy interface.
type (
	Criteria = partition.Criteria
	Bisector = partition.Bisector
	// Metis is the METIS-like multilevel bisection baseline.
	Metis = partition.Metis
)

// The paper's three partitioning criteria (§5.1.1).
var (
	Partition1 = partition.Partition1 // isolate updated vertices
	Partition2 = partition.Partition2 // minimize connectivity
	Partition3 = partition.Partition3 // both
)

// GeneratorConfig carries the synthetic-workload parameters of Table 1.
type GeneratorConfig = datagen.Config

// UpdateConfig controls a synthetic update round (§5's three operations).
type UpdateConfig = datagen.UpdateConfig

// UpdateKind selects relabel / add-edge / add-vertex updates.
type UpdateKind = datagen.UpdateKind

// The three update operations of the evaluation, plus edge deletion (an
// extension beyond the paper's update model; opt-in via UpdateConfig.Kinds).
const (
	Relabel    = datagen.Relabel
	AddEdge    = datagen.AddEdge
	AddVertex  = datagen.AddVertex
	RemoveEdge = datagen.RemoveEdge
)

// NewGraph returns an empty graph with the given id.
func NewGraph(id int) *Graph { return graph.New(id) }

// UnitMiner is the per-unit mining contract (see core.UnitMiner): it
// must observe ctx and report failures so degraded units surface in
// Result.Degraded.
type UnitMiner = core.UnitMiner

// Observer receives execution events (stage timings, work counters)
// from every layer of a mining run; set it via Options.Observer.
type Observer = exec.Observer

// PhaseCollector is a ready-made Observer aggregating the per-phase
// breakdown (partition / unit mining / merge) the paper's §5 tables
// report; its String method renders the table.
type PhaseCollector = exec.Collector

// NewPhaseCollector returns an empty, ready-to-use PhaseCollector.
func NewPhaseCollector() *PhaseCollector { return &exec.Collector{} }

// Mine runs PartMiner over the database (paper Fig. 11).
func Mine(db Database, opts Options) (*Result, error) {
	return core.PartMiner(db, opts)
}

// MineContext is Mine with cooperative cancellation: every mining layer
// (unit miners, merge-join, isomorphism search) checks ctx and the run
// returns ctx.Err() promptly once it is cancelled or its deadline
// passes. Serial and parallel runs produce identical pattern sets.
func MineContext(ctx context.Context, db Database, opts Options) (*Result, error) {
	return core.MineContext(ctx, db, opts)
}

// MineIncremental runs IncPartMiner (paper Fig. 12): it updates prev's
// results for the modified database newDB, where updatedTIDs lists the
// indexes of the changed graphs.
func MineIncremental(newDB Database, updatedTIDs []int, prev *Result) (*IncResult, error) {
	return core.IncPartMiner(newDB, updatedTIDs, prev)
}

// MineIncrementalContext is MineIncremental with cooperative
// cancellation, mirroring MineContext.
func MineIncrementalContext(ctx context.Context, newDB Database, updatedTIDs []int, prev *Result) (*IncResult, error) {
	return core.IncMineContext(ctx, newDB, updatedTIDs, prev)
}

// AbsoluteSupport converts a fractional support (0.04 = the paper's 4%)
// into an absolute graph count for db, flooring at 1.
func AbsoluteSupport(db Database, frac float64) int {
	return core.AbsoluteSupport(db, frac)
}

// Generate builds a synthetic database per the Table 1 parameters.
func Generate(cfg GeneratorConfig) Database { return datagen.Generate(cfg) }

// ApplyUpdates mutates db in place per the update configuration and
// returns the updated transaction ids (ascending), ready to feed into
// MineIncremental.
func ApplyUpdates(db Database, cfg UpdateConfig) []int {
	return datagen.ApplyUpdates(db, cfg)
}

// ReadDatabase parses a database in the gSpan-style text format
// ("t # id" / "v id label [ufreq]" / "e u v label").
func ReadDatabase(r io.Reader) (Database, error) { return graph.ReadDatabase(r) }

// WriteDatabase writes a database in the text format.
func WriteDatabase(w io.Writer, db Database) error { return graph.WriteDatabase(w, db) }

// SaveResult serializes a mining result so a later process can resume
// incremental mining; results using custom bisectors or unit miners are
// rejected (not representable on disk).
func SaveResult(w io.Writer, res *Result) error { return core.SaveResult(w, res) }

// LoadResult reconstructs a saved result against the same database it was
// mined from; the partition tree is re-derived deterministically.
func LoadResult(r io.Reader, db Database) (*Result, error) { return core.LoadResult(r, db) }

// SearchIndex is a frequent-structure containment index over a database
// (filter-verify subgraph search; see internal/query).
type SearchIndex = query.Index

// SearchIndexOptions configures BuildSearchIndex.
type SearchIndexOptions = query.IndexOptions

// BuildSearchIndex mines db and indexes the frequent subgraphs as search
// features; use Index.Find to answer subgraph containment queries.
func BuildSearchIndex(db Database, opts SearchIndexOptions) *SearchIndex {
	return query.BuildIndex(db, opts)
}

// BuildSearchIndexContext is BuildSearchIndex with cooperative
// cancellation of the feature-mining phase.
func BuildSearchIndexContext(ctx context.Context, db Database, opts SearchIndexOptions) (*SearchIndex, error) {
	return query.BuildIndexContext(ctx, db, opts)
}

// SearchScan answers a containment query by scanning the whole database
// with exact subgraph isomorphism — the unindexed baseline for
// BuildSearchIndex.
func SearchScan(db Database, q *Graph) []int { return query.Scan(db, q) }

// WorkerPool is a fleet of remote unit-mining workers (cmd/partworker);
// pass pool.MineUnit as Options.UnitMiner (with Options.Parallel) to
// distribute Phase 2a across machines. RPC failures fail over to the
// next worker once, then degrade the unit — visible in Result.Degraded
// and via pool.Err().
type WorkerPool = remote.Pool

// DialWorkers connects to unit-mining workers at the given "host:port"
// addresses.
func DialWorkers(addrs ...string) (*WorkerPool, error) { return remote.Dial(addrs...) }
