// Distributed: PartMiner's units mined by a fleet of workers over TCP.
// The paper notes PartMiner "is inherently parallel in nature" (§1): after
// partitioning, the k units are independent, so only the unit databases
// travel out and only the (small) frequent-pattern sets travel back.
//
// This example starts three workers inside the same process (stand-ins
// for `partworker -listen ...` running on other machines), mines through
// them, and verifies the distributed result against a local run.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"partminer"
	"partminer/internal/remote"
)

func main() {
	// Stand-in worker fleet. On real deployments run `partworker -listen`
	// on each machine instead.
	var addrs []string
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go remote.Serve(l) //nolint:errcheck
		addrs = append(addrs, l.Addr().String())
	}
	fmt.Printf("worker fleet: %v\n\n", addrs)

	db := partminer.Generate(partminer.GeneratorConfig{
		D: 500, T: 20, N: 20, L: 200, I: 5, Seed: 8,
	})
	sup := partminer.AbsoluteSupport(db, 0.04)

	pool, err := partminer.DialWorkers(addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	t0 := time.Now()
	dist, err := partminer.Mine(db, partminer.Options{
		MinSupport: sup,
		K:          6,
		Parallel:   true, // units fan out across the fleet concurrently
		UnitMiner:  pool.MineUnit,
	})
	if err != nil {
		log.Fatal(err)
	}
	distTime := time.Since(t0)
	if err := pool.Err(); err != nil {
		log.Fatalf("worker failure: %v", err)
	}

	t0 = time.Now()
	local, err := partminer.Mine(db, partminer.Options{MinSupport: sup, K: 6})
	if err != nil {
		log.Fatal(err)
	}
	localTime := time.Since(t0)

	if !dist.Patterns.Equal(local.Patterns) {
		log.Fatal("distributed and local results differ")
	}
	fmt.Printf("distributed: %d patterns in %v (unit mining on 3 workers)\n",
		len(dist.Patterns), distTime.Round(time.Millisecond))
	fmt.Printf("local:       %d patterns in %v\n",
		len(local.Patterns), localTime.Round(time.Millisecond))
	fmt.Println("\nresults identical (verified).")
}
