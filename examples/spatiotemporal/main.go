// Spatiotemporal: the paper's motivating dynamic scenario (§1). A stream
// of updates hits a graph database — relabeled regions, new connections,
// new sites — and IncPartMiner keeps the frequent-pattern set current
// without re-mining from scratch, classifying each pattern's fate as UF
// (unchanged), FI (frequent→infrequent), or IF (infrequent→frequent).
//
//	go run ./examples/spatiotemporal
package main

import (
	"fmt"
	"log"
	"time"

	"partminer"
)

func main() {
	// Region graphs: vertices are places (labels = place categories),
	// edges are spatial relations. Hot vertices model fast-changing sites.
	db := partminer.Generate(partminer.GeneratorConfig{
		D: 300, T: 18, N: 15, L: 120, I: 4, Seed: 9, HotFraction: 0.15,
	})
	sup := partminer.AbsoluteSupport(db, 0.05)

	t0 := time.Now()
	res, err := partminer.Mine(db, partminer.Options{
		MinSupport: sup,
		K:          4,
		Bisector:   partminer.Partition3, // isolate hot vertices AND minimize the cut
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial mine: %d patterns in %v\n", len(res.Patterns), time.Since(t0).Round(time.Millisecond))

	// Five rounds of updates arrive over time; each round touches ~25% of
	// the regions, preferring the hot sites.
	for round := 1; round <= 5; round++ {
		updated := partminer.ApplyUpdates(db, partminer.UpdateConfig{
			Fraction: 0.25,
			Seed:     int64(round),
			N:        15,
		})

		t0 = time.Now()
		inc, err := partminer.MineIncremental(db, updated, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %3d graphs updated, %d/%d units re-mined, %v\n",
			round, len(updated), len(inc.ReminedUnits), 4, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("         %4d unchanged (UF)  %3d lost (FI)  %3d gained (IF)  -> %d patterns\n",
			len(inc.UF), len(inc.FI), len(inc.IF), len(inc.Patterns))

		// Chain the rounds: the incremental result is the next baseline.
		res = &inc.Result
	}
}
