// Parallel: PartMiner is inherently parallel — the k units are mined
// independently (§5.1.3). This example mines the same database serially
// and with concurrent unit mining and reports the aggregate vs parallel
// wall-clock split the paper's Figure 15 plots.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"partminer"
)

func main() {
	db := partminer.Generate(partminer.GeneratorConfig{
		D: 500, T: 20, N: 20, L: 200, I: 5, Seed: 31,
	})
	sup := partminer.AbsoluteSupport(db, 0.04)

	fmt.Println(" k   serial-total   parallel-total   sum(units)   max(unit)   merge")
	var baseline partminer.PatternSet
	for _, k := range []int{1, 2, 4, 6} {
		serial, err := partminer.Mine(db, partminer.Options{MinSupport: sup, K: k})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		par, err := partminer.Mine(db, partminer.Options{MinSupport: sup, K: k, Parallel: true})
		if err != nil {
			log.Fatal(err)
		}
		parTotal := time.Since(t0)

		if baseline == nil {
			baseline = serial.Patterns
		} else if !serial.Patterns.Equal(baseline) {
			log.Fatalf("k=%d changed the result", k)
		}
		if !par.Patterns.Equal(baseline) {
			log.Fatal("parallel mode changed the result")
		}

		var sum, max time.Duration
		for _, d := range serial.UnitTimes {
			sum += d
			if d > max {
				max = d
			}
		}
		fmt.Printf("%2d   %12v   %14v   %10v   %9v   %v\n",
			k,
			serial.AggregateTime().Round(time.Millisecond),
			parTotal.Round(time.Millisecond),
			sum.Round(time.Millisecond),
			max.Round(time.Millisecond),
			serial.MergeTime.Round(time.Millisecond))
	}
	fmt.Println("\nall unit counts produced identical pattern sets (verified).")
}
