// Chemistry: mine a synthetic molecule-like database (the paper's static
// scenario) and compare PartMiner with the disk-based ADIMINE baseline,
// reproducing the §5.1.2 observation: above a support crossover the
// partition-based approach wins.
//
//	go run ./examples/chemistry
package main

import (
	"fmt"
	"log"
	"time"

	"partminer"
	"partminer/internal/adimine"
)

func main() {
	// A database in the spirit of D50kT20N20L200I5, scaled to run in
	// seconds: 20 labels play the role of atom/bond types, 200 recurring
	// kernels play the role of shared functional groups.
	db := partminer.Generate(partminer.GeneratorConfig{
		D: 400, T: 20, N: 20, L: 200, I: 5, Seed: 2026,
	})
	fmt.Printf("database: %d graphs, %d total edges\n\n", len(db), db.TotalEdges())

	fmt.Println("minsup   PartMiner   ADIMINE    #patterns")
	for _, frac := range []float64{0.02, 0.04, 0.06} {
		sup := partminer.AbsoluteSupport(db, frac)

		t0 := time.Now()
		res, err := partminer.Mine(db, partminer.Options{MinSupport: sup, K: 2})
		if err != nil {
			log.Fatal(err)
		}
		pmTime := time.Since(t0)

		t0 = time.Now()
		adiSet, err := adimine.Mine(db, adimine.Options{MinSupport: sup})
		if err != nil {
			log.Fatal(err)
		}
		adiTime := time.Since(t0)

		if !res.Patterns.Equal(adiSet) {
			log.Fatalf("miners disagree at %.0f%%: %v", frac*100, res.Patterns.Diff(adiSet))
		}
		fmt.Printf("%4.0f%%   %9v  %9v   %d\n", frac*100, pmTime.Round(time.Millisecond),
			adiTime.Round(time.Millisecond), len(res.Patterns))
	}
	fmt.Println("\nboth miners returned identical pattern sets (verified).")
}
