// Search: subgraph containment queries over a graph database, accelerated
// by an index built from PartMiner's frequent subgraphs (the gIndex idea
// from the paper's related work [18]). Shows the filter-verify paradigm:
// the index's frequent-structure features prune the candidate set before
// exact isomorphism verification.
//
//	go run ./examples/search
package main

import (
	"fmt"
	"math/rand"
	"time"

	"partminer"
)

func main() {
	db := partminer.Generate(partminer.GeneratorConfig{
		D: 400, T: 16, N: 12, L: 80, I: 4, Seed: 77,
	})

	t0 := time.Now()
	ix := partminer.BuildSearchIndex(db, partminer.SearchIndexOptions{
		MinSupport:      20, // 5%
		MaxFeatureEdges: 4,
	})
	fmt.Printf("indexed %d graphs with %d frequent-structure features in %v\n\n",
		len(db), ix.FeatureCount(), time.Since(t0).Round(time.Millisecond))

	// Queries: fragments cut out of database graphs (guaranteed nonempty
	// answers) of growing size.
	rng := rand.New(rand.NewSource(5))
	fmt.Println("query  answers  candidates  pruned   index     scan")
	for _, size := range []int{3, 4, 5, 6} {
		q := fragment(rng, db[rng.Intn(len(db))], size)

		t0 = time.Now()
		hits, st := ix.Find(q)
		indexTime := time.Since(t0)

		t0 = time.Now()
		scanHits := partminer.SearchScan(db, q)
		scanTime := time.Since(t0)

		if len(hits) != len(scanHits) {
			panic("index and scan disagree")
		}
		fmt.Printf("%4dE   %6d   %9d   %5.1f%%  %8v  %8v\n",
			q.EdgeCount(), len(hits), st.Candidates,
			100*(1-float64(st.Candidates)/float64(len(db))),
			indexTime.Round(time.Microsecond), scanTime.Round(time.Microsecond))
	}
	fmt.Println("\nindex answers verified against full scans.")
}

// fragment cuts a connected induced piece of size vertices out of g.
func fragment(rng *rand.Rand, g *partminer.Graph, size int) *partminer.Graph {
	start := rng.Intn(g.VertexCount())
	keep := []int{start}
	seen := map[int]bool{start: true}
	for i := 0; i < len(keep) && len(keep) < size; i++ {
		for _, e := range g.Adj[keep[i]] {
			if !seen[e.To] && len(keep) < size {
				seen[e.To] = true
				keep = append(keep, e.To)
			}
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
