// Quickstart: build a tiny graph database by hand, mine it with PartMiner,
// and print every frequent subgraph with its support.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"partminer"
)

func main() {
	// Three molecules sharing a carbon ring fragment. Labels: vertices
	// 0=C, 1=O, 2=N; edges 0=single bond, 1=double bond.
	db := partminer.Database{ring(0, true), ring(1, true), ring(2, false)}

	res, err := partminer.Mine(db, partminer.Options{
		MinSupport: 2, // a pattern must appear in 2 of the 3 graphs
		K:          2, // split each graph into 2 partitions
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d graphs -> %d frequent subgraphs (support >= 2)\n\n", len(db), len(res.Patterns))
	keys := res.Patterns.Keys()
	sort.Slice(keys, func(i, j int) bool {
		pi, pj := res.Patterns[keys[i]], res.Patterns[keys[j]]
		if pi.Size() != pj.Size() {
			return pi.Size() < pj.Size()
		}
		return pi.Support > pj.Support
	})
	for _, k := range keys {
		p := res.Patterns[k]
		fmt.Printf("  %d edges, support %d: %s\n", p.Size(), p.Support, p.Code)
	}
	fmt.Printf("\nphase times: partition %v, units %v, merge-join %v\n",
		res.PartitionTime, res.UnitTimes, res.MergeTime)
}

// ring builds a 4-carbon fragment with an oxygen; withN adds a pendant
// nitrogen so that only the core fragment is frequent across all graphs.
func ring(id int, withN bool) *partminer.Graph {
	g := partminer.NewGraph(id)
	c1 := g.AddVertex(0)
	c2 := g.AddVertex(0)
	c3 := g.AddVertex(0)
	c4 := g.AddVertex(0)
	o := g.AddVertex(1)
	g.MustAddEdge(c1, c2, 0)
	g.MustAddEdge(c2, c3, 1)
	g.MustAddEdge(c3, c4, 0)
	g.MustAddEdge(c4, c1, 0)
	g.MustAddEdge(c1, o, 1)
	if withN {
		n := g.AddVertex(2)
		g.MustAddEdge(c3, n, 0)
	}
	return g
}
