package partminer

import (
	"testing"

	"partminer/internal/adimine"
	"partminer/internal/core"
	"partminer/internal/datagen"
	"partminer/internal/fsg"
	"partminer/internal/gaston"
	"partminer/internal/gspan"
	"partminer/internal/pattern"
)

// TestAllMinersAgreeOnGeneratedWorkload is the repository-wide consistency
// check on a realistic (kernel-planted) workload rather than uniform
// random graphs: every miner and every PartMiner configuration must
// produce the same pattern set with identical supports.
func TestAllMinersAgreeOnGeneratedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	db := datagen.Generate(datagen.Config{D: 100, N: 12, T: 14, I: 4, L: 40, Seed: 6})
	sup := core.AbsoluteSupport(db, 0.06)

	want := gspan.Mine(db, gspan.Options{MinSupport: sup})

	check := func(name string, got pattern.Set) {
		t.Helper()
		if !got.Equal(want) {
			diff := got.Diff(want)
			if len(diff) > 8 {
				diff = diff[:8]
			}
			t.Errorf("%s disagrees with gSpan (%d vs %d patterns): %v",
				name, len(got), len(want), diff)
		}
	}

	check("gaston", gaston.Mine(db, gaston.Options{MinSupport: sup}))
	check("gaston/free-tree", gaston.Mine(db, gaston.Options{MinSupport: sup, Engine: gaston.EngineFreeTree}))
	check("fsg", fsg.Mine(db, fsg.Options{MinSupport: sup}))

	adiSet, err := adimine.Mine(db, adimine.Options{MinSupport: sup})
	if err != nil {
		t.Fatal(err)
	}
	check("adimine", adiSet)

	for _, k := range []int{1, 2, 3, 5} {
		res, err := core.PartMiner(db, core.Options{MinSupport: sup, K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		check("partminer", res.Patterns)
	}
	par, err := core.PartMiner(db, core.Options{MinSupport: sup, K: 4, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	check("partminer/parallel", par.Patterns)

	strict, err := core.PartMiner(db, core.Options{MinSupport: sup, K: 2, StrictPaperJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	// Strict-paper mode is sound but may be incomplete: subset check.
	for key, p := range strict.Patterns {
		w, ok := want[key]
		if !ok {
			t.Errorf("strict-paper invented pattern %s", p)
			continue
		}
		if w.Support != p.Support {
			t.Errorf("strict-paper wrong support for %s: %d want %d", p.Code, p.Support, w.Support)
		}
	}

	// Closed/maximal condensation sanity on the agreed set.
	closed := want.Closed()
	maximal := want.Maximal()
	if len(maximal) > len(closed) || len(closed) > len(want) {
		t.Errorf("condensation sizes inverted: %d full, %d closed, %d maximal",
			len(want), len(closed), len(maximal))
	}
}
