package partminer_test

import (
	"fmt"
	"sort"

	"partminer"
)

// buildToyDB makes three graphs sharing a labeled triangle; the third
// lacks the pendant vertex the first two have.
func buildToyDB() partminer.Database {
	mk := func(id int, pendant bool) *partminer.Graph {
		g := partminer.NewGraph(id)
		a := g.AddVertex(0)
		b := g.AddVertex(0)
		c := g.AddVertex(1)
		g.MustAddEdge(a, b, 0)
		g.MustAddEdge(b, c, 0)
		g.MustAddEdge(c, a, 0)
		if pendant {
			d := g.AddVertex(2)
			g.MustAddEdge(a, d, 1)
		}
		return g
	}
	return partminer.Database{mk(0, true), mk(1, true), mk(2, false)}
}

// ExampleMine mines a tiny database and lists the patterns that occur in
// every graph.
func ExampleMine() {
	db := buildToyDB()
	res, err := partminer.Mine(db, partminer.Options{MinSupport: 3, K: 2})
	if err != nil {
		panic(err)
	}
	var lines []string
	for _, p := range res.Patterns {
		lines = append(lines, fmt.Sprintf("%d-edge pattern with support %d", p.Size(), p.Support))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// 1-edge pattern with support 3
	// 1-edge pattern with support 3
	// 2-edge pattern with support 3
	// 2-edge pattern with support 3
	// 3-edge pattern with support 3
}

// ExampleMineIncremental updates one graph and reclassifies the patterns.
func ExampleMineIncremental() {
	db := buildToyDB()
	res, err := partminer.Mine(db, partminer.Options{MinSupport: 3, K: 2})
	if err != nil {
		panic(err)
	}
	// Relabel the third graph's lone 1-labeled vertex: the triangle is no
	// longer shared by all three graphs.
	db[2].Labels[2] = 9
	inc, err := partminer.MineIncremental(db, []int{2}, res)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unchanged %d, lost %d, gained %d\n", len(inc.UF), len(inc.FI), len(inc.IF))
	// Output:
	// unchanged 1, lost 4, gained 0
}

// ExamplePatternSet_Maximal condenses a mined set to its maximal members.
func ExamplePatternSet_Maximal() {
	db := buildToyDB()
	res, err := partminer.Mine(db, partminer.Options{MinSupport: 3, K: 2})
	if err != nil {
		panic(err)
	}
	max := res.Patterns.Maximal()
	for _, p := range max {
		fmt.Printf("maximal: %d edges, support %d\n", p.Size(), p.Support)
	}
	// Output:
	// maximal: 3 edges, support 3
}
