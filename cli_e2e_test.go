package partminer

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the three command-line tools and drives the full
// workflow: generate a database, mine it, save the result, apply an
// update round, mine incrementally from the saved result, and regenerate
// a benchmark figure.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test builds binaries; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := func(name string) string { return filepath.Join(tmp, name) }
	for _, name := range []string{"partminer", "datagen", "benchrunner"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}
	run := func(name string, args ...string) (string, string) {
		cmd := exec.Command(bin(name), args...)
		var stdout, stderr strings.Builder
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstdout: %s\nstderr: %s", name, args, err, stdout.String(), stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	dbPath := filepath.Join(tmp, "db.txt")
	_, errOut := run("datagen", "-d", "60", "-t", "12", "-n", "10", "-l", "40", "-i", "4", "-seed", "3", "-o", dbPath)
	if !strings.Contains(errOut, "generating D60T12N10L40I4") {
		t.Errorf("datagen banner missing: %q", errOut)
	}
	if fi, err := os.Stat(dbPath); err != nil || fi.Size() == 0 {
		t.Fatalf("datagen produced no output: %v", err)
	}

	resPath := filepath.Join(tmp, "result.pm")
	out, errOut := run("partminer", "-minsup", "0.1", "-k", "2", "-maxedges", "4", "-save", resPath, dbPath)
	if !strings.Contains(out, "frequent subgraphs in") {
		t.Errorf("mining summary missing: %q", out)
	}
	if !strings.Contains(errOut, "saved result") {
		t.Errorf("save confirmation missing: %q", errOut)
	}

	// Same database, gspan and adimine miners must agree on the count.
	baseCount := strings.Fields(out)[0]
	for _, miner := range []string{"gspan", "adimine"} {
		mout, _ := run("partminer", "-minsup", "0.1", "-maxedges", "4", "-miner", miner, dbPath)
		if strings.Fields(mout)[0] != baseCount {
			t.Errorf("%s found %s patterns; partminer found %s", miner, strings.Fields(mout)[0], baseCount)
		}
	}

	updPath := filepath.Join(tmp, "db2.txt")
	run("datagen", "-update", "0.3", "-seed", "5", "-n", "10", "-o", updPath, dbPath)

	_, errOut = run("partminer", "-minsup", "0.1", "-k", "2", "-maxedges", "4",
		"-resume", resPath, "-updated", updPath, dbPath)
	if !strings.Contains(errOut, "resumed") {
		t.Errorf("resume banner missing: %q", errOut)
	}
	if !strings.Contains(errOut, "UF (unchanged frequent)") {
		t.Errorf("incremental classification missing: %q", errOut)
	}

	out, _ = run("benchrunner", "-fig", "ablation-miner", "-d50k", "60", "-d100k", "60", "-maxedges", "3")
	if !strings.Contains(out, "ablation-miner") || !strings.Contains(out, "Gaston") {
		t.Errorf("benchrunner output missing table: %q", out)
	}
}
